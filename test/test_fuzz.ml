(* Deterministic budget of crash-point fuzzing: every PR explores crash
   points the seed tests never pinned down, with fixed seeds so CI cannot
   flake. Also validates that the harness has teeth — a deliberately
   broken variant must be caught and shrunk to a small repro — and that
   episodes are exactly reproducible (the shrinker and the printed repro
   commands depend on that). *)

open Prep

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

module F = Check.Fuzz.Make (Seqds.Hashmap)
module H = Seqds.Hashmap

(* Same mix as the CLI fuzz workload: 60% updates over a small key range. *)
let gen_op rng =
  let k = Sim.Rng.int rng 64 in
  match Sim.Rng.int rng 10 with
  | 0 | 1 | 2 | 3 -> (H.op_insert, [| k; Sim.Rng.int rng 1000 |])
  | 4 | 5 -> (H.op_remove, [| k |])
  | 6 | 7 | 8 -> (H.op_get, [| k |])
  | _ -> (H.op_size, [||])

(* Every budget in this file is a deterministic count — [iters] episodes
   of [ops] operations per worker, under seed-derived schedules and
   crash points. Nothing loops on wall-clock time ([At_time] crash
   points are *simulated* nanoseconds, advanced by the deterministic
   scheduler), so a run's outcome and its cost are identical on every
   machine and CI never flakes on load. The bounded-exhaustive
   counterpart with the same property lives in test_explore.ml. *)
let template ~seed ~epsilon ~ops =
  {
    Check.Fuzz.workload_seed = seed;
    threads = 6;
    epsilon;
    log_size = 256;
    ops_per_worker = ops;
    bg_period = 2000;
    preempt_prob = 0.02;
    crash = Check.Fuzz.No_crash;
  }

let no_failures label (res : Check.Fuzz.result) =
  List.iter
    (fun { Check.Fuzz.episode; violations } ->
      Alcotest.failf "%s: %s failed: %s" label
        (Fmt.str "%a" Check.Fuzz.pp_episode episode)
        (String.concat "; "
           (List.map Check.Durable_lin.violation_to_string violations)))
    res.Check.Fuzz.failures

let test_fuzz_buffered () =
  let res =
    F.fuzz ~mode:Config.Buffered ~fault:Config.No_fault ~gen_op
      ~template:(template ~seed:4200 ~epsilon:16 ~ops:120)
      ~iters:10 ()
  in
  no_failures "buffered" res;
  check "episodes run" 10 res.Check.Fuzz.episodes;
  check_bool "crash points were explored" true (res.Check.Fuzz.crashes > 0)

let test_fuzz_durable () =
  let res =
    F.fuzz ~mode:Config.Durable ~fault:Config.No_fault ~gen_op
      ~template:(template ~seed:5200 ~epsilon:16 ~ops:120)
      ~iters:10 ()
  in
  no_failures "durable" res;
  check_bool "crash points were explored" true (res.Check.Fuzz.crashes > 0)

let test_fuzz_volatile () =
  (* volatile episodes never crash; the harness still checks quiescent
     state against the full-trace replay under randomized preemption *)
  let res =
    F.fuzz ~mode:Config.Volatile ~fault:Config.No_fault ~gen_op
      ~template:(template ~seed:6200 ~epsilon:16 ~ops:120)
      ~iters:4 ()
  in
  no_failures "volatile" res;
  check "no crashes in volatile mode" 0 res.Check.Fuzz.crashes

let test_episode_deterministic () =
  (* the same episode must produce bit-identical outcomes — repro commands
     and the shrinker rely on this *)
  let ep =
    { (template ~seed:777 ~epsilon:16 ~ops:100) with
      crash = Check.Fuzz.At_op 200_000 }
  in
  let run () = F.run_episode ~mode:Config.Buffered ~fault:Config.No_fault ~gen_op ep in
  let a = run () and b = run () in
  check_bool "crashed" true a.Check.Fuzz.crashed;
  check "same logged" a.Check.Fuzz.logged b.Check.Fuzz.logged;
  check "same completed" a.Check.Fuzz.completed b.Check.Fuzz.completed;
  check "same applied" a.Check.Fuzz.applied b.Check.Fuzz.applied;
  check "both clean" 0
    (List.length a.Check.Fuzz.violations + List.length b.Check.Fuzz.violations)

let test_crash_hook_cuts_at_op () =
  (* an op-index crash must actually cut the run short *)
  let quiescent =
    F.run_episode ~mode:Config.Buffered ~fault:Config.No_fault ~gen_op
      (template ~seed:888 ~epsilon:16 ~ops:100)
  in
  check_bool "baseline finishes" false quiescent.Check.Fuzz.crashed;
  let ep =
    { (template ~seed:888 ~epsilon:16 ~ops:100) with
      crash = Check.Fuzz.At_op (quiescent.Check.Fuzz.runtime_ops / 2) }
  in
  let out = F.run_episode ~mode:Config.Buffered ~fault:Config.No_fault ~gen_op ep in
  check_bool "crashed mid-run" true out.Check.Fuzz.crashed;
  check_bool "partial trace" true
    (out.Check.Fuzz.logged < quiescent.Check.Fuzz.logged);
  check "clean" 0 (List.length out.Check.Fuzz.violations)

let test_broken_variant_caught_and_shrunk () =
  (* the known-bad ordering (flush boundary advanced before the persist +
     swap) must be detected within a small budget and shrink to <= 4
     threads with a replayable repro *)
  let mode = Config.Buffered and fault = Config.Early_boundary_advance in
  let tpl = template ~seed:9000 ~epsilon:8 ~ops:120 in
  let res = F.fuzz ~mode ~fault ~gen_op ~template:tpl ~iters:8 () in
  check_bool "broken variant caught" true (res.Check.Fuzz.failures <> []);
  let first = List.hd res.Check.Fuzz.failures in
  check_bool "caught as a loss-bound violation" true
    (List.exists
       (function Check.Durable_lin.Loss_bound_exceeded _ -> true | _ -> false)
       first.Check.Fuzz.violations);
  let small = F.shrink ~mode ~fault ~gen_op first.Check.Fuzz.episode in
  check_bool
    (Fmt.str "shrunk to <= 4 threads (%a)" Check.Fuzz.pp_episode small)
    true
    (small.Check.Fuzz.threads <= 4);
  (* the shrunk episode, replayed from scratch, still reproduces *)
  let out = F.run_episode ~mode ~fault ~gen_op small in
  check_bool "shrunk repro still fails" true (out.Check.Fuzz.violations <> [])

let test_fixed_variant_passes_where_broken_fails () =
  (* same episodes, fault removed: the violations must disappear, pinning
     the failure on the injected bug rather than on the harness *)
  let tpl = template ~seed:9000 ~epsilon:8 ~ops:120 in
  let res =
    F.fuzz ~mode:Config.Buffered ~fault:Config.No_fault ~gen_op ~template:tpl
      ~iters:8 ()
  in
  no_failures "fixed variant" res

(* ---- differential fuzzing of the flush-elimination layer ---- *)

let test_fuzz_flit_differential () =
  (* same seeded crash-point budget with the flush-elimination layer off
     and on: the durable-linearizability checker must find the two
     variants indistinguishable (zero violations on both sides). The
     schedules themselves may diverge — elided flushes change simulated
     time — so the comparison is at the level of the checked guarantees,
     not raw traces. *)
  let tpl = template ~seed:5200 ~epsilon:16 ~ops:120 in
  let base =
    F.fuzz ~mode:Config.Durable ~fault:Config.No_fault ~gen_op ~template:tpl
      ~iters:10 ()
  in
  let flit =
    F.fuzz ~flit:true ~mode:Config.Durable ~fault:Config.No_fault ~gen_op
      ~template:tpl ~iters:10 ()
  in
  no_failures "baseline" base;
  no_failures "flit" flit;
  check "same episode budget" base.Check.Fuzz.episodes flit.Check.Fuzz.episodes;
  check_bool "flit crash points explored" true (flit.Check.Fuzz.crashes > 0);
  (* calibration: with one worker, no crash and no randomized preemption
     the op stream is a pure function of the seed (preemption draws from
     the scheduler rng on every tick, and flit changes the tick count, so
     it would shift the fiber rng seeding), so both variants must log and
     complete the exact same operations *)
  let calib =
    { tpl with
      Check.Fuzz.threads = 1;
      ops_per_worker = 80;
      preempt_prob = 0.0 }
  in
  let a = F.run_episode ~mode:Config.Durable ~fault:Config.No_fault ~gen_op calib in
  let b =
    F.run_episode ~flit:true ~mode:Config.Durable ~fault:Config.No_fault
      ~gen_op calib
  in
  check "calibration: same logged" a.Check.Fuzz.logged b.Check.Fuzz.logged;
  check "calibration: same completed" a.Check.Fuzz.completed
    b.Check.Fuzz.completed;
  check "calibration: same applied" a.Check.Fuzz.applied b.Check.Fuzz.applied

let test_fuzz_flit_buffered () =
  let res =
    F.fuzz ~flit:true ~mode:Config.Buffered ~fault:Config.No_fault ~gen_op
      ~template:(template ~seed:4200 ~epsilon:16 ~ops:120)
      ~iters:10 ()
  in
  no_failures "flit buffered" res;
  check_bool "crash points were explored" true (res.Check.Fuzz.crashes > 0)

let test_flit_elide_ct_flush_caught_and_shrunk () =
  (* the planted fault skips the completedTail flush that the flit
     combiner otherwise relies on the flush-tracking layer to elide
     safely; the fuzzer must catch the resulting post-crash loss of
     completed operations and shrink it to a small replayable repro *)
  let mode = Config.Durable and fault = Config.Elide_ct_flush in
  let tpl = template ~seed:9100 ~epsilon:16 ~ops:120 in
  let res = F.fuzz ~flit:true ~mode ~fault ~gen_op ~template:tpl ~iters:8 () in
  check_bool "planted fault caught" true (res.Check.Fuzz.failures <> []);
  let first = List.hd res.Check.Fuzz.failures in
  check_bool "caught as durable loss" true
    (List.exists
       (function
         | Check.Durable_lin.Loss_bound_exceeded _
         | Check.Durable_lin.Prefix_violation _ -> true
         | _ -> false)
       first.Check.Fuzz.violations);
  let small = F.shrink ~flit:true ~mode ~fault ~gen_op first.Check.Fuzz.episode in
  check_bool
    (Fmt.str "shrunk to <= 4 threads (%a)" Check.Fuzz.pp_episode small)
    true
    (small.Check.Fuzz.threads <= 4);
  let out = F.run_episode ~flit:true ~mode ~fault ~gen_op small in
  check_bool "shrunk repro still fails" true (out.Check.Fuzz.violations <> []);
  (* the printed repro must carry both the fault and the flit flag *)
  let cmd = Check.Fuzz.repro_command ~flit:true ~mode ~fault ~ds:"hashmap" small in
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  check_bool "repro names the fault" true (contains cmd "elide-ct-flush");
  check_bool "repro passes --flit" true (contains cmd "--flit")

let test_flit_fault_needs_flit_combiner () =
  (* without the flush-elimination layer the baseline combiner issues
     per-entry CLFLUSHes that also persist the log payloads, so the same
     fault still loses the completedTail but recovery replays the full
     durable log: the episodes that fail under flit must fail here too —
     the fault elides a flush the durable guarantee depends on in both
     combiners. Running it pins the fault's blast radius. *)
  let res =
    F.fuzz ~mode:Config.Durable ~fault:Config.Elide_ct_flush ~gen_op
      ~template:(template ~seed:9100 ~epsilon:16 ~ops:120)
      ~iters:8 ()
  in
  check_bool "fault observable without flit too" true
    (res.Check.Fuzz.failures <> [])

(* ---- differential fuzzing of the NUMA hot-path package ----

   Same methodology as the flit campaigns: each optimisation gets the same
   seeded crash-point budget with the flag off and on, and the
   durable-linearizability checker must find the variants
   indistinguishable. Schedules diverge (the optimisations change the
   memory-op stream and so simulated time), so the comparison is at the
   level of the checked guarantees, plus a single-worker
   preemption-free calibration where the op streams are bit-identical. *)

let calibrate label tpl run_opt =
  let calib =
    { tpl with
      Check.Fuzz.threads = 1;
      ops_per_worker = 80;
      preempt_prob = 0.0 }
  in
  let a =
    F.run_episode ~mode:Config.Durable ~fault:Config.No_fault ~gen_op calib
  in
  let b = run_opt calib in
  check (label ^ ": same logged") a.Check.Fuzz.logged b.Check.Fuzz.logged;
  check (label ^ ": same completed") a.Check.Fuzz.completed
    b.Check.Fuzz.completed;
  check (label ^ ": same applied") a.Check.Fuzz.applied b.Check.Fuzz.applied

let test_fuzz_mirror_differential () =
  let tpl = template ~seed:5300 ~epsilon:16 ~ops:120 in
  let base =
    F.fuzz ~mode:Config.Durable ~fault:Config.No_fault ~gen_op ~template:tpl
      ~iters:10 ()
  in
  let mir =
    F.fuzz ~log_mirror:true ~mode:Config.Durable ~fault:Config.No_fault
      ~gen_op ~template:tpl ~iters:10 ()
  in
  no_failures "baseline" base;
  no_failures "log-mirror" mir;
  check "same episode budget" base.Check.Fuzz.episodes mir.Check.Fuzz.episodes;
  check_bool "mirror crash points explored" true (mir.Check.Fuzz.crashes > 0);
  calibrate "calibration" tpl
    (F.run_episode ~log_mirror:true ~mode:Config.Durable
       ~fault:Config.No_fault ~gen_op)

let test_fuzz_dist_rw_differential () =
  let tpl = template ~seed:5400 ~epsilon:16 ~ops:120 in
  let base =
    F.fuzz ~mode:Config.Durable ~fault:Config.No_fault ~gen_op ~template:tpl
      ~iters:10 ()
  in
  let dist =
    F.fuzz ~dist_rw:true ~mode:Config.Durable ~fault:Config.No_fault ~gen_op
      ~template:tpl ~iters:10 ()
  in
  no_failures "baseline" base;
  no_failures "dist-rw" dist;
  check "same episode budget" base.Check.Fuzz.episodes dist.Check.Fuzz.episodes;
  check_bool "dist-rw crash points explored" true (dist.Check.Fuzz.crashes > 0);
  calibrate "calibration" tpl
    (F.run_episode ~dist_rw:true ~mode:Config.Durable ~fault:Config.No_fault
       ~gen_op)

let test_fuzz_package_differential () =
  (* the shipping configuration: everything on at once, over buffered mode
     as well so the epsilon+beta-1 loss bound is exercised too *)
  let tpl = template ~seed:5500 ~epsilon:16 ~ops:120 in
  List.iter
    (fun mode ->
      let res =
        F.fuzz ~flit:true ~dist_rw:true ~log_mirror:true ~slot_bitmap:true
          ~mode ~fault:Config.No_fault ~gen_op ~template:tpl ~iters:10 ()
      in
      no_failures "package" res;
      check_bool "crash points explored" true (res.Check.Fuzz.crashes > 0))
    [ Config.Buffered; Config.Durable ];
  calibrate "calibration" tpl
    (F.run_episode ~flit:true ~dist_rw:true ~log_mirror:true ~slot_bitmap:true
       ~mode:Config.Durable ~fault:Config.No_fault ~gen_op)

let test_mirror_read_recovery_caught_and_shrunk () =
  (* the planted fault serves recovery's log replay from the DRAM mirror —
     volatile, zeroed by the crash — so durably completed operations read
     as holes and are dropped; the fuzzer must catch the durable loss and
     shrink it to a replayable repro *)
  let mode = Config.Durable and fault = Config.Mirror_read_on_recovery in
  let tpl = template ~seed:9300 ~epsilon:16 ~ops:40 in
  let res =
    F.fuzz ~log_mirror:true ~mode ~fault ~gen_op ~template:tpl ~iters:8 ()
  in
  check_bool "planted fault caught" true (res.Check.Fuzz.failures <> []);
  let first = List.hd res.Check.Fuzz.failures in
  check_bool "caught as durable loss" true
    (List.exists
       (function
         | Check.Durable_lin.Loss_bound_exceeded _
         | Check.Durable_lin.Prefix_violation _
         | Check.Durable_lin.State_mismatch _ -> true
         | _ -> false)
       first.Check.Fuzz.violations);
  let small =
    F.shrink ~log_mirror:true ~mode ~fault ~gen_op first.Check.Fuzz.episode
  in
  check_bool
    (Fmt.str "shrunk to <= 4 threads (%a)" Check.Fuzz.pp_episode small)
    true
    (small.Check.Fuzz.threads <= 4);
  let out = F.run_episode ~log_mirror:true ~mode ~fault ~gen_op small in
  check_bool "shrunk repro still fails" true (out.Check.Fuzz.violations <> []);
  let cmd =
    Check.Fuzz.repro_command ~log_mirror:true ~mode ~fault ~ds:"hashmap" small
  in
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  check_bool "repro names the fault" true (contains cmd "mirror-read-recovery");
  check_bool "repro passes --log-mirror" true (contains cmd "--log-mirror")

let test_mirror_fault_inert_without_mirror () =
  (* without the mirror there is nothing volatile to read from: the fault
     flag must be a no-op, pinning the failure above on the mirror itself *)
  let res =
    F.fuzz ~mode:Config.Durable ~fault:Config.Mirror_read_on_recovery ~gen_op
      ~template:(template ~seed:9300 ~epsilon:16 ~ops:40)
      ~iters:8 ()
  in
  no_failures "fault without mirror" res

(* ---- detectability layer ----

   Same methodology again: the detect protocol (persistent announces,
   combiner-persisted responses) gets a seeded crash-point budget of its
   own, and its planted fault — responses reaching media before the log
   entries they answer for — must be caught and shrunk. *)

let test_fuzz_detect_clean () =
  let res =
    F.fuzz ~detect:true ~mode:Config.Durable ~fault:Config.No_fault ~gen_op
      ~template:(template ~seed:5600 ~epsilon:16 ~ops:120)
      ~iters:10 ()
  in
  no_failures "detect" res;
  check_bool "detect crash points explored" true (res.Check.Fuzz.crashes > 0)

let test_response_before_log_persist_caught_and_shrunk () =
  (* the planted fault persists responses eagerly (CLFLUSH to media) while
     leaving the log entries' write-backs unfenced: a crash in the window
     leaves a response promising seqno s with no durable log entry to back
     it, which recovery surfaces as a resolve mismatch (Completed claimed,
     op not applied) or as completed-op loss *)
  let mode = Config.Durable and fault = Config.Response_before_log_persist in
  let tpl = template ~seed:9400 ~epsilon:16 ~ops:60 in
  let res = F.fuzz ~detect:true ~mode ~fault ~gen_op ~template:tpl ~iters:8 () in
  check_bool "planted fault caught" true (res.Check.Fuzz.failures <> []);
  let first = List.hd res.Check.Fuzz.failures in
  check_bool "caught as resolve mismatch or durable loss" true
    (List.exists
       (function
         | Check.Durable_lin.Resolve_mismatch _
         | Check.Durable_lin.Loss_bound_exceeded _
         | Check.Durable_lin.Prefix_violation _ -> true
         | _ -> false)
       first.Check.Fuzz.violations);
  let small = F.shrink ~detect:true ~mode ~fault ~gen_op first.Check.Fuzz.episode in
  check_bool
    (Fmt.str "shrunk to <= 4 threads (%a)" Check.Fuzz.pp_episode small)
    true
    (small.Check.Fuzz.threads <= 4);
  let out = F.run_episode ~detect:true ~mode ~fault ~gen_op small in
  check_bool "shrunk repro still fails" true (out.Check.Fuzz.violations <> []);
  let cmd =
    Check.Fuzz.repro_command ~detect:true ~mode ~fault ~ds:"hashmap" small
  in
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  check_bool "repro names the fault" true
    (contains cmd "response-before-log-persist");
  check_bool "repro passes --detect" true (contains cmd "--detect")

let test_response_fault_requires_detect () =
  (* without the detectability layer there are no response records to
     persist early: the config layer rejects the combination outright, so
     the fault can never masquerade as a baseline bug *)
  Alcotest.check_raises "config rejects fault without detect"
    (Invalid_argument
       "Config: response-before-log-persist fault only exists under --detect")
    (fun () ->
      Config.validate ~beta:4
        (Config.make ~mode:Config.Durable
           ~fault:Config.Response_before_log_persist ~workers:1 ()));
  Alcotest.check_raises "config rejects detect outside durable"
    (Invalid_argument
       "Config: detectable execution requires durable mode (a buffered \
        checkpoint cannot be gated on response persistence)")
    (fun () ->
      Config.validate ~beta:4
        (Config.make ~mode:Config.Buffered ~detect:true ~workers:1 ()))

(* A second data structure through the same harness: the fuzzing oracle is
   the pure model, so any Ds_intf.S implementation plugs in. *)
module Fq = Check.Fuzz.Make (Seqds.Queue_ds)

let queue_gen rng =
  if Sim.Rng.int rng 2 = 0 then
    (Seqds.Queue_ds.op_enqueue, [| Sim.Rng.int rng 1000 |])
  else (Seqds.Queue_ds.op_dequeue, [||])

let test_fuzz_queue_durable () =
  let res =
    Fq.fuzz ~mode:Config.Durable ~fault:Config.No_fault ~gen_op:queue_gen
      ~template:(template ~seed:7300 ~epsilon:16 ~ops:120)
      ~iters:6 ()
  in
  List.iter
    (fun { Check.Fuzz.episode; violations } ->
      Alcotest.failf "queue: %s failed: %s"
        (Fmt.str "%a" Check.Fuzz.pp_episode episode)
        (String.concat "; "
           (List.map Check.Durable_lin.violation_to_string violations)))
    res.Check.Fuzz.failures

(* ---- incremental (lsm) checkpointing ----

   The [--lsm-ckpt] backend replaces the whole-replica flush+swap with
   memtable seals into immutable segments under a fenced manifest.
   Behaviourally it must be invisible, so it gets the standard treatment:
   a differential crash-point budget against the classic checkpoint on
   every map implementation, and its planted fault — the manifest record
   published *before* the segments it names are sealed — must be caught
   and shrunk to a replayable repro that carries both flags. *)

module Frb = Check.Fuzz.Make (Seqds.Rbtree)
module Fsl = Check.Fuzz.Make (Seqds.Skiplist)

let test_fuzz_lsm_differential () =
  let tpl = template ~seed:5700 ~epsilon:8 ~ops:120 in
  let base =
    F.fuzz ~mode:Config.Durable ~fault:Config.No_fault ~gen_op ~template:tpl
      ~iters:8 ()
  in
  let lsm =
    F.fuzz ~lsm_ckpt:true ~mode:Config.Durable ~fault:Config.No_fault ~gen_op
      ~template:tpl ~iters:8 ()
  in
  no_failures "baseline" base;
  no_failures "lsm" lsm;
  check "same episode budget" base.Check.Fuzz.episodes lsm.Check.Fuzz.episodes;
  check_bool "lsm crash points explored" true (lsm.Check.Fuzz.crashes > 0);
  calibrate "calibration" tpl
    (F.run_episode ~lsm_ckpt:true ~mode:Config.Durable ~fault:Config.No_fault
       ~gen_op)

let test_fuzz_lsm_all_maps () =
  (* the dirty tracker keys on Ds.classify, so each map implementation's
     key_effect wiring is load-bearing; buffered mode rides along to cover
     the no-replay recovery path *)
  let tpl = template ~seed:5800 ~epsilon:8 ~ops:100 in
  let run label res =
    no_failures label res;
    check_bool (label ^ ": crash points explored") true
      (res.Check.Fuzz.crashes > 0)
  in
  run "lsm rbtree"
    (Frb.fuzz ~lsm_ckpt:true ~mode:Config.Durable ~fault:Config.No_fault
       ~gen_op ~template:tpl ~iters:6 ());
  run "lsm skiplist"
    (Fsl.fuzz ~lsm_ckpt:true ~mode:Config.Durable ~fault:Config.No_fault
       ~gen_op ~template:tpl ~iters:6 ());
  run "lsm buffered hashmap"
    (F.fuzz ~lsm_ckpt:true ~mode:Config.Buffered ~fault:Config.No_fault
       ~gen_op ~template:tpl ~iters:6 ())

let test_manifest_before_seal_caught_and_shrunk () =
  (* the planted fault names segment addresses in a durable manifest
     record before their bodies are sealed: a crash in the window mounts
     nothing at those addresses while sealed_lt already skips their log
     entries, so recovery silently loses sealed effects *)
  let mode = Config.Durable and fault = Config.Manifest_before_segment_seal in
  let tpl = template ~seed:9400 ~epsilon:8 ~ops:120 in
  let res = F.fuzz ~lsm_ckpt:true ~mode ~fault ~gen_op ~template:tpl ~iters:8 () in
  check_bool "planted fault caught" true (res.Check.Fuzz.failures <> []);
  let first = List.hd res.Check.Fuzz.failures in
  check_bool "caught as durable loss" true
    (List.exists
       (function
         | Check.Durable_lin.Loss_bound_exceeded _
         | Check.Durable_lin.Prefix_violation _
         | Check.Durable_lin.State_mismatch _ -> true
         | _ -> false)
       first.Check.Fuzz.violations);
  let small = F.shrink ~lsm_ckpt:true ~mode ~fault ~gen_op first.Check.Fuzz.episode in
  check_bool
    (Fmt.str "shrunk to <= 4 threads (%a)" Check.Fuzz.pp_episode small)
    true
    (small.Check.Fuzz.threads <= 4);
  let out = F.run_episode ~lsm_ckpt:true ~mode ~fault ~gen_op small in
  check_bool "shrunk repro still fails" true (out.Check.Fuzz.violations <> []);
  let cmd = Check.Fuzz.repro_command ~lsm_ckpt:true ~mode ~fault ~ds:"hashmap" small in
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  check_bool "repro names the fault" true (contains cmd "manifest-before-seal");
  check_bool "repro passes --lsm-ckpt" true (contains cmd "--lsm-ckpt")

let test_lsm_config_rejections () =
  (* the config layer pins the lsm flag combinations that have no
     semantics, so they can never masquerade as bugs *)
  Alcotest.check_raises "volatile has no checkpoints to replace"
    (Invalid_argument
       "Config: --lsm-ckpt is a checkpoint strategy; the volatile \
        variant has no checkpoints")
    (fun () ->
      Config.validate ~beta:4
        (Config.make ~mode:Config.Volatile ~lsm_ckpt:true ~workers:1 ()));
  Alcotest.check_raises "fanout below 2 cannot converge"
    (Invalid_argument "Config: lsm_fanout must be at least 2")
    (fun () ->
      Config.validate ~beta:4
        (Config.make ~mode:Config.Durable ~lsm_ckpt:true ~lsm_fanout:1
           ~workers:1 ()));
  Alcotest.check_raises "manifest fault needs the lsm backend"
    (Invalid_argument
       "Config: manifest-before-seal fault only exists under --lsm-ckpt")
    (fun () ->
      Config.validate ~beta:4
        (Config.make ~mode:Config.Durable
           ~fault:Config.Manifest_before_segment_seal ~workers:1 ()))

(* ---- durable_lin checker unit tests on synthetic reports ---- *)

module Dl = Check.Durable_lin.Make (H.Model)

let synthetic_trace ops =
  let tr = Trace.create () in
  List.iteri
    (fun i (op, args, completed) ->
      Trace.logged tr i ~op ~args;
      if completed then Trace.completed tr i)
    ops;
  tr

let ins k v completed = (H.op_insert, [| k; v |], completed)

let test_checker_accepts_prefix () =
  let tr = synthetic_trace [ ins 1 10 true; ins 2 20 true; ins 3 30 true ] in
  let model =
    List.fold_left
      (fun m (op, args, _) -> fst (H.Model.apply m ~op ~args))
      H.Model.empty
      [ ins 1 10 true; ins 2 20 true ]
  in
  let v =
    Dl.check ~trace:tr ~prefill:[] ~applied:[ 0; 1 ] ~completed:[ 0; 1; 2 ]
      ~recovered_snapshot:(H.Model.snapshot model) ~loss_bound:1 ()
  in
  check "prefix loss within bound accepted" 0 (List.length v)

let test_checker_rejects_lost_before_survivor () =
  let tr = synthetic_trace [ ins 1 10 true; ins 2 20 true ] in
  let model = fst (H.Model.apply H.Model.empty ~op:H.op_insert ~args:[| 2; 20 |]) in
  let v =
    Dl.check ~trace:tr ~prefill:[] ~applied:[ 1 ] ~completed:[ 0; 1 ]
      ~recovered_snapshot:(H.Model.snapshot model) ~loss_bound:5 ()
  in
  check_bool "completed op lost before survivor rejected" true
    (List.exists
       (function Check.Durable_lin.Prefix_violation _ -> true | _ -> false)
       v)

let test_checker_allows_uncompleted_hole () =
  (* a log hole that never completed may be skipped (durable mode) *)
  let tr = synthetic_trace [ ins 1 10 true; ins 2 20 false; ins 3 30 true ] in
  let model =
    List.fold_left
      (fun m (k, v) -> fst (H.Model.apply m ~op:H.op_insert ~args:[| k; v |]))
      H.Model.empty [ (1, 10); (3, 30) ]
  in
  let v =
    Dl.check ~trace:tr ~prefill:[] ~applied:[ 0; 2 ] ~completed:[ 0; 2 ]
      ~recovered_snapshot:(H.Model.snapshot model) ~loss_bound:0 ()
  in
  check "uncompleted hole tolerated" 0 (List.length v)

let test_checker_rejects_state_mismatch () =
  let tr = synthetic_trace [ ins 1 10 true ] in
  let v =
    Dl.check ~trace:tr ~prefill:[] ~applied:[ 0 ] ~completed:[ 0 ]
      ~recovered_snapshot:[ 1; 99 ] ~loss_bound:0 ()
  in
  check_bool "wrong recovered state rejected" true
    (List.exists
       (function Check.Durable_lin.State_mismatch _ -> true | _ -> false)
       v)

let () =
  Alcotest.run "fuzz"
    [
      ( "checker",
        [
          Alcotest.test_case "accepts prefix within bound" `Quick
            test_checker_accepts_prefix;
          Alcotest.test_case "rejects lost-before-survivor" `Quick
            test_checker_rejects_lost_before_survivor;
          Alcotest.test_case "allows uncompleted hole" `Quick
            test_checker_allows_uncompleted_hole;
          Alcotest.test_case "rejects state mismatch" `Quick
            test_checker_rejects_state_mismatch;
        ] );
      ( "harness",
        [
          Alcotest.test_case "episode deterministic" `Quick
            test_episode_deterministic;
          Alcotest.test_case "crash hook cuts at op" `Quick
            test_crash_hook_cuts_at_op;
        ] );
      ( "fuzzing",
        [
          Alcotest.test_case "buffered clean" `Slow test_fuzz_buffered;
          Alcotest.test_case "durable clean" `Slow test_fuzz_durable;
          Alcotest.test_case "volatile clean" `Slow test_fuzz_volatile;
          Alcotest.test_case "queue durable clean" `Slow test_fuzz_queue_durable;
          Alcotest.test_case "broken variant caught and shrunk" `Slow
            test_broken_variant_caught_and_shrunk;
          Alcotest.test_case "fixed variant passes same episodes" `Slow
            test_fixed_variant_passes_where_broken_fails;
        ] );
      ( "flit",
        [
          Alcotest.test_case "differential: flit indistinguishable" `Slow
            test_fuzz_flit_differential;
          Alcotest.test_case "flit buffered clean" `Slow test_fuzz_flit_buffered;
          Alcotest.test_case "elide-ct-flush caught and shrunk" `Slow
            test_flit_elide_ct_flush_caught_and_shrunk;
          Alcotest.test_case "elide-ct-flush observable without flit" `Slow
            test_flit_fault_needs_flit_combiner;
        ] );
      ( "numa",
        [
          Alcotest.test_case "differential: log mirror indistinguishable" `Slow
            test_fuzz_mirror_differential;
          Alcotest.test_case "differential: dist-rw indistinguishable" `Slow
            test_fuzz_dist_rw_differential;
          Alcotest.test_case "differential: full package indistinguishable"
            `Slow test_fuzz_package_differential;
          Alcotest.test_case "mirror-read-recovery caught and shrunk" `Slow
            test_mirror_read_recovery_caught_and_shrunk;
          Alcotest.test_case "mirror fault inert without mirror" `Slow
            test_mirror_fault_inert_without_mirror;
        ] );
      ( "lsm",
        [
          Alcotest.test_case "differential: lsm ckpt indistinguishable" `Slow
            test_fuzz_lsm_differential;
          Alcotest.test_case "lsm clean on every map + buffered" `Slow
            test_fuzz_lsm_all_maps;
          Alcotest.test_case "manifest-before-seal caught and shrunk" `Slow
            test_manifest_before_seal_caught_and_shrunk;
          Alcotest.test_case "config rejects meaningless lsm combinations"
            `Quick test_lsm_config_rejections;
        ] );
      ( "detect",
        [
          Alcotest.test_case "detect clean" `Slow test_fuzz_detect_clean;
          Alcotest.test_case "response-before-log-persist caught and shrunk"
            `Slow test_response_before_log_persist_caught_and_shrunk;
          Alcotest.test_case "response fault requires detect" `Quick
            test_response_fault_requires_detect;
        ] );
    ]
