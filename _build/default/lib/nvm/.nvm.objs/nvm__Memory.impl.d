lib/nvm/memory.ml: Array Bytes Hashtbl List Sim
