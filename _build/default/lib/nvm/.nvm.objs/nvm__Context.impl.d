lib/nvm/context.ml: Alloc Fun Hashtbl Sim
