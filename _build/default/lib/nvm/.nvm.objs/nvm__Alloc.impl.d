lib/nvm/alloc.ml: Hashtbl List Memory Sim
