lib/nvm/roots.ml: Memory
