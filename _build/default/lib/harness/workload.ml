(** Workload generators matching the paper's evaluation (§6).

    Map workloads draw keys uniformly from a key range and split the
    operation mix between reads (get) and updates (half insert, half
    remove), e.g. "90% read-only". Queue/stack/priority-queue workloads are
    100% update, with each worker executing operation *pairs*
    (enqueue+dequeue / push+pop) so the structure's size stays stable. *)

type op = int * int array

(** A workload is (prefill ops, per-worker op generator). The generator
    returns the next operation for a worker given its RNG; pair workloads
    alternate internally. *)
type t = {
  name : string;
  prefill : op list;
  next : Sim.Rng.t -> phase:int -> op;
      (** [phase] is a per-worker op counter, used to alternate pairs *)
}

(* ---- map workloads (hashmap / rbtree share op codes) ---- *)

let map_workload ~read_pct ~key_range ~prefill_n =
  let module H = Seqds.Hashmap in
  let prefill =
    (* 50% capacity as in the paper: prefill_n distinct keys *)
    List.init prefill_n (fun i ->
        let k = i * (key_range / max 1 prefill_n) in
        (H.op_insert, [| k; k |]))
  in
  let next rng ~phase =
    ignore phase;
    let k = Sim.Rng.int rng key_range in
    let r = Sim.Rng.int rng 100 in
    if r < read_pct then (H.op_get, [| k |])
    else if r < read_pct + ((100 - read_pct) / 2) then
      (H.op_insert, [| k; Sim.Rng.int rng 1_000_000 |])
    else (H.op_remove, [| k |])
  in
  {
    name = Printf.sprintf "map %d%% read, %d keys" read_pct key_range;
    prefill;
    next;
  }

(* ---- pair workloads ---- *)

let queue_pairs ~prefill_n =
  let module Q = Seqds.Queue_ds in
  {
    name = Printf.sprintf "queue enq/deq pairs, %d items" prefill_n;
    prefill = List.init prefill_n (fun i -> (Q.op_enqueue, [| i |]));
    next =
      (fun rng ~phase ->
        if phase land 1 = 0 then (Q.op_enqueue, [| Sim.Rng.int rng 1_000_000 |])
        else (Q.op_dequeue, [||]));
  }

let pqueue_pairs ~prefill_n =
  let module P = Seqds.Pqueue in
  {
    name = Printf.sprintf "pqueue enq/deq pairs, %d items" prefill_n;
    prefill = List.init prefill_n (fun i -> (P.op_enqueue, [| (i * 7919) mod 1_000_003 |]));
    next =
      (fun rng ~phase ->
        if phase land 1 = 0 then (P.op_enqueue, [| Sim.Rng.int rng 1_000_000 |])
        else (P.op_dequeue, [||]));
  }

let stack_pairs ~prefill_n =
  let module S = Seqds.Stack_ds in
  {
    name = Printf.sprintf "stack push/pop pairs, %d items" prefill_n;
    prefill = List.init prefill_n (fun i -> (S.op_push, [| i |]));
    next =
      (fun rng ~phase ->
        if phase land 1 = 0 then (S.op_push, [| Sim.Rng.int rng 1_000_000 |])
        else (S.op_pop, [||]));
  }
