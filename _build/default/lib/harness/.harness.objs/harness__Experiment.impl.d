lib/harness/experiment.ml: Array List Memory Nvm Prep Printf Roots Seqds Sim Workload
