lib/harness/figures.ml: Experiment Format List Prep Printf Seqds Sim Sys Workload
