lib/harness/workload.ml: List Printf Seqds Sim
