(** Locks over simulated memory (paper §3: each replica is protected by a
    trylock — the combiner lock — and a reader-writer lock). *)

open Nvm

(** Trylock: one word, 0 = free, 1 = held. *)
module Trylock = struct
  type t = { mem : Memory.t; a : int }

  let size_words = 1

  let make mem a =
    Memory.write mem a 0;
    { mem; a }

  let try_acquire t = Memory.cas t.mem t.a ~expected:0 ~desired:1
  let release t = Memory.write t.mem t.a 0
  let held t = Memory.read t.mem t.a = 1
end

(** Reader-writer lock: one word, 0 = free, [n > 0] = n readers,
    [-1] = writer. Writers and readers both spin; this matches the strong
    try reader-writer lock the paper's systems use, with writer acquisition
    via CAS from the free state. *)
module Rwlock = struct
  type t = { mem : Memory.t; a : int }

  let size_words = 1

  let make mem a =
    Memory.write mem a 0;
    { mem; a }

  let try_read_acquire t =
    let v = Memory.read t.mem t.a in
    v >= 0 && Memory.cas t.mem t.a ~expected:v ~desired:(v + 1)

  let read_acquire t =
    while not (try_read_acquire t) do
      Sim.spin ()
    done

  let read_release t = ignore (Memory.faa t.mem t.a (-1))

  let try_write_acquire t = Memory.cas t.mem t.a ~expected:0 ~desired:(-1)

  let write_acquire t =
    while not (try_write_acquire t) do
      Sim.spin ()
    done

  let write_release t = Memory.write t.mem t.a 0
end
