lib/core/soft_hash.ml: Alloc Array Context List Memory Nvm Seqds Sim
