lib/core/gl_uc.ml: Alloc Context List Locks Memory Nvm Seqds Sim
