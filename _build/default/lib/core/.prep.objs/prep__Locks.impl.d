lib/core/locks.ml: Memory Nvm Sim
