lib/core/cx_puc.ml: Alloc Array Context List Locks Log Memory Nvm Option Roots Seqds Sim
