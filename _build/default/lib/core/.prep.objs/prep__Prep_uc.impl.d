lib/core/prep_uc.ml: Alloc Array Config Context Hashtbl List Locks Log Memory Nvm Option Roots Seqds Sim Trace
