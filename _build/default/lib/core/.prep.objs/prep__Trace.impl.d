lib/core/trace.ml: Array Seqds
