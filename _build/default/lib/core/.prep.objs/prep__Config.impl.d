lib/core/config.ml:
