lib/core/log.ml: Array Memory Nvm Sim
