lib/seqds/queue_ds.ml: Array Context List Memory Nvm
