lib/seqds/stack_ds.ml: Array Context List Memory Nvm
