lib/seqds/rbtree.ml: Array Context Int List Map Memory Nvm
