lib/seqds/ds_intf.ml: Nvm
