lib/seqds/hashmap.ml: Array Context Int List Map Memory Nvm
