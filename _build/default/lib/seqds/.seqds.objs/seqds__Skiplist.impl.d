lib/seqds/skiplist.ml: Array Context Hashmap List Memory Nvm
