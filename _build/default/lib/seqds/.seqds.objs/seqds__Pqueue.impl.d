lib/seqds/pqueue.ml: Array Context List Memory Nvm
