(** The black-box sequential object signature.

    This is the contract between a universal construction and the
    sequential data structure it lifts (paper §3, §5.2):

    - operations are invoked through a single [execute] dispatch — the
      paper's [Execute] switch over raw function pointers. An operation is
      an integer op code plus integer arguments, which is exactly what gets
      written into (and recovered from) the shared log;
    - the UC may ask whether an op code is read-only ([is_readonly]), the
      paper's optional boolean argument to [ExecuteConcurrent];
    - the UC may deep-[copy] a structure to instantiate a replica; the copy
      allocates through the *current* fiber allocator ([Nvm.Context]), so
      the same code builds volatile and persistent replicas;
    - [attach] reattaches a handle to a structure recovered from NVM media
      after a crash, given its persisted root address.

    The structure's entire state must live in simulated memory reached from
    the root address: the UC never sees its internals, and a crash must be
    able to take away exactly the unpersisted part. *)

module type MODEL = sig
  (** Pure reference model of the same object, for checkers. *)

  type m

  val empty : m
  val apply : m -> op:int -> args:int array -> m * int
  val snapshot : m -> int list
end

module type S = sig
  val name : string

  type handle

  (** Allocate a fresh, empty structure via the current fiber allocator. *)
  val create : Nvm.Memory.t -> handle

  (** Stable root address of the structure (what a PUC persists so it can
      find the structure again after a crash). *)
  val root_addr : handle -> int

  (** Reattach to a structure whose root block is at [addr]. *)
  val attach : Nvm.Memory.t -> int -> handle

  (** Run one operation; returns its integer response. *)
  val execute : handle -> op:int -> args:int array -> int

  val is_readonly : op:int -> bool

  (** Deep copy into the current fiber allocator. *)
  val copy : handle -> handle

  (** Cost-free canonical observation of the current (coherent) state, for
      checkers only. *)
  val snapshot : handle -> int list

  module Model : MODEL
end
