(** Concurrent-history recording.

    Each completed operation is recorded with its invocation and response
    times in *simulated* nanoseconds. Because the simulator executes
    fibers in causal order, these intervals are exactly the real-time
    order a linearizability checker needs. *)

type event = {
  thread : int;
  t_inv : int;
  t_resp : int;
  op : int;
  args : int array;
  resp : int;
}

type t = { mutable events : event list; mutable count : int }

let create () = { events = []; count = 0 }

(** Wrap an operation executor so completed calls are recorded. *)
let wrap t ~thread exec ~op ~args =
  let t_inv = Sim.now () in
  let resp = exec ~op ~args in
  let t_resp = Sim.now () in
  t.events <- { thread; t_inv; t_resp; op; args; resp } :: t.events;
  t.count <- t.count + 1;
  resp

let events t = List.rev t.events
let length t = t.count
