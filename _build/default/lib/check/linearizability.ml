(** Wing–Gong linearizability checker for complete histories.

    A history is linearizable w.r.t. a sequential model if there is a
    total order of its operations that (1) respects real-time order (if
    op A's response precedes op B's invocation, A comes first), and
    (2) every response matches what the model returns when the ops are
    applied in that order.

    The checker is a DFS over "linearize next" choices with memoization
    on (set of linearized ops, model state). Exponential in the worst
    case — intended for the small histories the tests generate (tens of
    operations). *)

module Make (Model : Seqds.Ds_intf.MODEL) = struct
  type verdict = Linearizable | Not_linearizable

  let check_from initial (history : History.event list) =
    let ops = Array.of_list history in
    let n = Array.length ops in
    if n > 62 then invalid_arg "Linearizability.check: history too large";
    let full_mask = if n = 0 then 0 else (1 lsl n) - 1 in
    (* memo of explored-and-failed states *)
    let failed : (int * int list, unit) Hashtbl.t = Hashtbl.create 1024 in
    let rec dfs mask model =
      if mask = full_mask then true
      else begin
        let key = (mask, Model.snapshot model) in
        if Hashtbl.mem failed key then false
        else begin
          (* the earliest response among unlinearized ops bounds which ops
             may be linearized next: anything invoked after it must wait *)
          let t_bound = ref max_int in
          for i = 0 to n - 1 do
            if mask land (1 lsl i) = 0 && ops.(i).History.t_resp < !t_bound
            then t_bound := ops.(i).History.t_resp
          done;
          let ok = ref false in
          let i = ref 0 in
          while (not !ok) && !i < n do
            let idx = !i in
            incr i;
            if mask land (1 lsl idx) = 0 then begin
              let e = ops.(idx) in
              if e.History.t_inv <= !t_bound then begin
                let model', resp =
                  Model.apply model ~op:e.History.op ~args:e.History.args
                in
                if resp = e.History.resp then
                  if dfs (mask lor (1 lsl idx)) model' then ok := true
              end
            end
          done;
          if not !ok then Hashtbl.replace failed key ();
          !ok
        end
      end
    in
    if dfs 0 initial then Linearizable else Not_linearizable

  let check history = check_from Model.empty history

  (** Like [check] but with the model state that [prefill] produces. *)
  let check_with_prefill ~prefill history =
    let initial =
      List.fold_left
        (fun m (op, args) -> fst (Model.apply m ~op ~args))
        Model.empty prefill
    in
    check_from initial history
end
