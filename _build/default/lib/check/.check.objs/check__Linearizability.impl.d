lib/check/linearizability.ml: Array Hashtbl History List Seqds
