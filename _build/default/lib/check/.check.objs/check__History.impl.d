lib/check/history.ml: List Sim
