(** Simulated NUMA machine description.

    The paper's testbed is a 2-socket Intel Xeon Gold 5220R (24 cores / 48
    hardware threads per socket) with Optane DCPMMs. The default topology
    keeps the 2-socket shape at reduced width so that container-scale runs
    finish quickly; [paper_scale] widens it to the paper's thread counts. *)

type t = {
  sockets : int;          (** number of NUMA nodes, [N] in the paper *)
  cores_per_socket : int; (** hardware threads per node, bounds batch size [beta] *)
}

let default = { sockets = 2; cores_per_socket = 12 }

let paper_scale = { sockets = 2; cores_per_socket = 48 }

let total_cores t = t.sockets * t.cores_per_socket

(** Map a worker index to its (socket, core), filling socket 0 completely
    before socket 1, matching the paper's pinning policy (§6). *)
let place t worker =
  if worker < 0 || worker >= total_cores t then
    invalid_arg "Topology.place: worker index out of range";
  (worker / t.cores_per_socket, worker mod t.cores_per_socket)

let pp ppf t =
  Fmt.pf ppf "%d socket(s) x %d core(s)" t.sockets t.cores_per_socket
