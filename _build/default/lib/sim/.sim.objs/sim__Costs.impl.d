lib/sim/costs.ml:
