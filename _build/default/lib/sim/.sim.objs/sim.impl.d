lib/sim/sim.ml: Array Costs Effect Option Rng Topology
