lib/sim/topology.ml: Fmt
