(** Deterministic SplitMix64 pseudo-random number generator.

    Every source of nondeterminism in the simulator (schedule jitter,
    background flushes, workload key choices) draws from an instance of this
    generator so that a run is fully reproducible from its seed. *)

type t = { mutable state : int64 }

let create seed = { state = seed }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** [int t bound] returns a uniform integer in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let r = Int64.to_int (next_int64 t) land max_int in
  r mod bound

(** [float t] returns a uniform float in [0, 1). *)
let float t =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  r /. 9007199254740992.0 (* 2^53 *)

(** [bool t] returns a uniform boolean. *)
let bool t = Int64.logand (next_int64 t) 1L = 1L

(** [split t] derives an independent generator; used to give each fiber its
    own stream so spawning order does not perturb unrelated draws. *)
let split t = create (next_int64 t)
