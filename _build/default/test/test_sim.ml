(* Tests for the discrete-event simulator substrate. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- RNG ---- *)

let test_rng_deterministic () =
  let a = Sim.Rng.create 7L and b = Sim.Rng.create 7L in
  for _ = 1 to 100 do
    check "same stream" (Sim.Rng.int a 1_000_000) (Sim.Rng.int b 1_000_000)
  done

let test_rng_bounds () =
  let r = Sim.Rng.create 3L in
  for _ = 1 to 10_000 do
    let x = Sim.Rng.int r 17 in
    check_bool "in range" true (x >= 0 && x < 17)
  done

let test_rng_float_range () =
  let r = Sim.Rng.create 11L in
  for _ = 1 to 10_000 do
    let f = Sim.Rng.float r in
    check_bool "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_rng_split_independent () =
  let parent = Sim.Rng.create 5L in
  let child = Sim.Rng.split parent in
  let child_vals = List.init 10 (fun _ -> Sim.Rng.int child 1000) in
  let parent_vals = List.init 10 (fun _ -> Sim.Rng.int parent 1000) in
  check_bool "streams differ" true (child_vals <> parent_vals)

(* ---- Topology ---- *)

let test_topology_place () =
  let topo = Sim.Topology.{ sockets = 2; cores_per_socket = 4 } in
  Alcotest.(check (pair int int)) "worker 0" (0, 0) (Sim.Topology.place topo 0);
  Alcotest.(check (pair int int)) "worker 3" (0, 3) (Sim.Topology.place topo 3);
  Alcotest.(check (pair int int)) "worker 4" (1, 0) (Sim.Topology.place topo 4);
  Alcotest.(check (pair int int)) "worker 7" (1, 3) (Sim.Topology.place topo 7);
  Alcotest.check_raises "out of range" (Invalid_argument
    "Topology.place: worker index out of range")
    (fun () -> ignore (Sim.Topology.place topo 8))

(* ---- scheduler ---- *)

let test_single_fiber_result () =
  let r = Sim.run_one (fun () -> 41 + 1) in
  check "result" 42 r

let test_tick_advances_clock () =
  let elapsed =
    Sim.run_one (fun () ->
        let t0 = Sim.now () in
        Sim.tick 500;
        Sim.tick 250;
        Sim.now () - t0)
  in
  check "750ns charged" 750 elapsed

let test_fibers_interleave_by_time () =
  (* Fiber A does expensive ticks, fiber B cheap ones: B's events should be
     timestamped consistently with simulated order, i.e. B finishes first. *)
  let order = ref [] in
  let sim = Sim.create Sim.Topology.default in
  ignore
    (Sim.spawn sim ~socket:0 (fun () ->
         for _ = 1 to 10 do Sim.tick 1000 done;
         order := `A :: !order));
  ignore
    (Sim.spawn sim ~socket:1 (fun () ->
         for _ = 1 to 10 do Sim.tick 10 done;
         order := `B :: !order));
  (match Sim.run sim () with `Done -> () | `Cut _ -> Alcotest.fail "cut");
  Alcotest.(check bool) "B finished before A" true (!order = [ `A; `B ])

let test_run_until_cuts () =
  (* two fibers so the causality rule forces interleaving (a lone fiber
     never yields and cannot be cut) *)
  let progressed = ref 0 in
  let sim = Sim.create Sim.Topology.default in
  for _ = 1 to 2 do
    ignore
      (Sim.spawn sim ~socket:0 (fun () ->
           for _ = 1 to 1000 do
             Sim.tick 100;
             incr progressed
           done))
  done;
  (match Sim.run ~until:5_000 sim () with
   | `Cut _ -> ()
   | `Done -> Alcotest.fail "expected a cut");
  (* Both fibers were abandoned mid-run around the 5µs mark. *)
  check_bool "partial progress" true (!progressed > 0 && !progressed < 2000)

let test_spawn_inherits_clock () =
  let child_start = ref (-1) in
  let sim = Sim.create Sim.Topology.default in
  ignore
    (Sim.spawn sim ~socket:0 (fun () ->
         Sim.tick 1234;
         ignore
           (Sim.spawn sim ~socket:0 (fun () -> child_start := Sim.now ()))));
  (match Sim.run sim () with `Done -> () | `Cut _ -> Alcotest.fail "cut");
  check "child starts at parent's clock" 1234 !child_start

let test_sleep_until () =
  let t =
    Sim.run_one (fun () ->
        Sim.tick 10;
        Sim.sleep_until 9_999;
        Sim.now ())
  in
  check "slept" 9_999 t

let test_determinism_across_runs () =
  let run () =
    let log = ref [] in
    let sim = Sim.create ~seed:99L Sim.Topology.default in
    for i = 0 to 3 do
      ignore
        (Sim.spawn sim ~socket:(i mod 2) (fun () ->
             for j = 1 to 5 do
               Sim.tick (50 + (17 * i));
               log := (i, j, Sim.now ()) :: !log
             done))
    done;
    (match Sim.run sim () with `Done -> () | `Cut _ -> Alcotest.fail "cut");
    !log
  in
  Alcotest.(check bool) "identical traces" true (run () = run ())

let () =
  Alcotest.run "sim"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
        ] );
      ( "topology",
        [ Alcotest.test_case "placement" `Quick test_topology_place ] );
      ( "scheduler",
        [
          Alcotest.test_case "single fiber result" `Quick test_single_fiber_result;
          Alcotest.test_case "tick advances clock" `Quick test_tick_advances_clock;
          Alcotest.test_case "interleave by time" `Quick test_fibers_interleave_by_time;
          Alcotest.test_case "run until cuts" `Quick test_run_until_cuts;
          Alcotest.test_case "spawn inherits clock" `Quick test_spawn_inherits_clock;
          Alcotest.test_case "sleep until" `Quick test_sleep_until;
          Alcotest.test_case "determinism" `Quick test_determinism_across_runs;
        ] );
    ]
