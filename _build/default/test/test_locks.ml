(* Tests for the trylock and reader-writer lock over simulated memory. *)

open Nvm
open Prep

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let topology = Sim.Topology.{ sockets = 2; cores_per_socket = 4 }

let with_mem f =
  Sim.run_one (fun () ->
      let mem = Memory.make ~bg_period:0 () in
      let aid = Memory.new_arena mem ~kind:Memory.Dram ~home:0 in
      f mem (Memory.addr_of ~aid ~offset:8))

let test_trylock_basic () =
  with_mem (fun mem a ->
      let l = Locks.Trylock.make mem a in
      check_bool "acquire" true (Locks.Trylock.try_acquire l);
      check_bool "held" true (Locks.Trylock.held l);
      check_bool "second acquire fails" false (Locks.Trylock.try_acquire l);
      Locks.Trylock.release l;
      check_bool "released" false (Locks.Trylock.held l);
      check_bool "reacquire" true (Locks.Trylock.try_acquire l))

let test_rwlock_readers_share () =
  with_mem (fun mem a ->
      let l = Locks.Rwlock.make mem a in
      check_bool "reader 1" true (Locks.Rwlock.try_read_acquire l);
      check_bool "reader 2" true (Locks.Rwlock.try_read_acquire l);
      check_bool "writer blocked by readers" false
        (Locks.Rwlock.try_write_acquire l);
      Locks.Rwlock.read_release l;
      check_bool "writer still blocked" false (Locks.Rwlock.try_write_acquire l);
      Locks.Rwlock.read_release l;
      check_bool "writer now ok" true (Locks.Rwlock.try_write_acquire l);
      check_bool "reader blocked by writer" false
        (Locks.Rwlock.try_read_acquire l);
      Locks.Rwlock.write_release l;
      check_bool "reader ok again" true (Locks.Rwlock.try_read_acquire l))

(* Writers are mutually exclusive with everyone in simulated time, and a
   shared counter incremented non-atomically under the write lock must not
   lose updates. *)
let test_rwlock_writer_exclusion () =
  let sim = Sim.create ~seed:3L topology in
  let mem = Memory.make ~bg_period:0 ~sockets:2 () in
  let aid = Memory.new_arena mem ~kind:Memory.Dram ~home:0 in
  let lock_addr = Memory.addr_of ~aid ~offset:8 in
  let counter = Memory.addr_of ~aid ~offset:16 in
  let l = ref None in
  ignore (Sim.spawn sim ~socket:0 (fun () ->
      l := Some (Locks.Rwlock.make mem lock_addr)));
  (match Sim.run sim () with `Done -> () | `Cut _ -> Alcotest.fail "cut");
  let sim = Sim.create ~seed:4L topology in
  let l = Option.get !l in
  for w = 0 to 7 do
    let socket, core = Sim.Topology.place topology w in
    ignore
      (Sim.spawn sim ~socket ~core (fun () ->
           for _ = 1 to 50 do
             Locks.Rwlock.write_acquire l;
             (* non-atomic read-modify-write: only safe under the lock *)
             let v = Memory.read mem counter in
             Sim.tick 30;
             Memory.write mem counter (v + 1);
             Locks.Rwlock.write_release l
           done))
  done;
  (match Sim.run sim () with `Done -> () | `Cut _ -> Alcotest.fail "cut");
  check "no lost updates" 400 (Memory.peek mem counter)

(* Readers must never observe a writer's half-done update. *)
let test_rwlock_readers_see_consistent_pairs () =
  let sim = Sim.create ~seed:5L topology in
  let mem = Memory.make ~bg_period:0 ~sockets:2 () in
  let aid = Memory.new_arena mem ~kind:Memory.Dram ~home:0 in
  let lock_addr = Memory.addr_of ~aid ~offset:8 in
  let x = Memory.addr_of ~aid ~offset:16 in
  let y = Memory.addr_of ~aid ~offset:24 in
  let violations = ref 0 in
  let l = ref None in
  ignore (Sim.spawn sim ~socket:0 (fun () ->
      l := Some (Locks.Rwlock.make mem lock_addr)));
  (match Sim.run sim () with `Done -> () | `Cut _ -> Alcotest.fail "cut");
  let l = Option.get !l in
  let sim = Sim.create ~seed:6L topology in
  (* writer keeps x = y, with a deliberate torn window inside the lock *)
  ignore
    (Sim.spawn sim ~socket:0 ~core:0 (fun () ->
         for i = 1 to 100 do
           Locks.Rwlock.write_acquire l;
           Memory.write mem x i;
           Sim.tick 100;
           Memory.write mem y i;
           Locks.Rwlock.write_release l
         done));
  for w = 1 to 6 do
    let socket, core = Sim.Topology.place topology w in
    ignore
      (Sim.spawn sim ~socket ~core (fun () ->
           for _ = 1 to 100 do
             Locks.Rwlock.read_acquire l;
             let xv = Memory.read mem x in
             let yv = Memory.read mem y in
             if xv <> yv then incr violations;
             Locks.Rwlock.read_release l
           done))
  done;
  (match Sim.run sim () with `Done -> () | `Cut _ -> Alcotest.fail "cut");
  check "no torn reads" 0 !violations

(* The combiner trylock pattern: many contenders, exactly one combiner at
   a time, everyone eventually becomes one. *)
let test_trylock_combiner_pattern () =
  let sim = Sim.create ~seed:8L topology in
  let mem = Memory.make ~bg_period:0 ~sockets:2 () in
  let aid = Memory.new_arena mem ~kind:Memory.Dram ~home:0 in
  let l = ref None in
  ignore (Sim.spawn sim ~socket:0 (fun () ->
      l := Some (Locks.Trylock.make mem (Memory.addr_of ~aid ~offset:8))));
  (match Sim.run sim () with `Done -> () | `Cut _ -> Alcotest.fail "cut");
  let l = Option.get !l in
  let sim = Sim.create ~seed:9L topology in
  let combines = Array.make 8 0 in
  for w = 0 to 7 do
    let socket, core = Sim.Topology.place topology w in
    ignore
      (Sim.spawn sim ~socket ~core (fun () ->
           let remaining = ref 20 in
           while !remaining > 0 do
             if Locks.Trylock.try_acquire l then begin
               Sim.tick 200;
               combines.(w) <- combines.(w) + 1;
               decr remaining;
               Locks.Trylock.release l
             end
             else Sim.spin ()
           done))
  done;
  (match Sim.run sim () with `Done -> () | `Cut _ -> Alcotest.fail "cut");
  Array.iteri
    (fun w n -> check (Printf.sprintf "worker %d combined" w) 20 n)
    combines

let () =
  Alcotest.run "locks"
    [
      ( "trylock",
        [
          Alcotest.test_case "basic" `Quick test_trylock_basic;
          Alcotest.test_case "combiner pattern" `Quick test_trylock_combiner_pattern;
        ] );
      ( "rwlock",
        [
          Alcotest.test_case "readers share" `Quick test_rwlock_readers_share;
          Alcotest.test_case "writer exclusion" `Quick test_rwlock_writer_exclusion;
          Alcotest.test_case "consistent reads" `Quick
            test_rwlock_readers_see_consistent_pairs;
        ] );
    ]
