(* Unit tests for the shared circular log: emptyBit parity across wraps,
   payload round-trips, durable persistence of entries. *)

open Nvm
open Prep

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let with_log ?(size = 8) ?(durable = false) f =
  Sim.run_one (fun () ->
      let mem = Memory.make ~bg_period:0 () in
      let log = Log.create mem ~size ~durable in
      f mem log)

let test_empty_initially () =
  with_log (fun _mem log ->
      for i = 0 to 7 do
        check_bool "entry empty" false (Log.is_full log i)
      done)

let test_publish_and_read () =
  with_log (fun _mem log ->
      Log.write_payload log 3 ~op:7 ~args:[| 10; 20 |];
      check_bool "not visible before publish" false (Log.is_full log 3);
      Log.publish log 3;
      check_bool "visible after publish" true (Log.is_full log 3);
      let op, args = Log.read_payload log 3 in
      check "op" 7 op;
      Alcotest.(check (array int)) "args" [| 10; 20 |] args)

let test_parity_flips_each_lap () =
  with_log ~size:4 (fun _mem log ->
      (* lap 0: full means 1 *)
      check "lap0 parity" 1 (Log.full_parity log 0);
      check "lap0 parity end" 1 (Log.full_parity log 3);
      (* lap 1: full means 0 *)
      check "lap1 parity" 0 (Log.full_parity log 4);
      (* lap 2: back to 1 *)
      check "lap2 parity" 1 (Log.full_parity log 8))

let test_stale_entry_reads_empty_after_wrap () =
  with_log ~size:4 (fun _mem log ->
      (* publish index 1 on lap 0 *)
      Log.write_payload log 1 ~op:1 ~args:[||];
      Log.publish log 1;
      check_bool "published on lap 0" true (Log.is_full log 1);
      (* index 5 reuses the same slot on lap 1: the stale emptyBit (1)
         means "empty" there, so no clearing is needed *)
      check_bool "lap-1 view is empty" false (Log.is_full log 5);
      Log.write_payload log 5 ~op:2 ~args:[| 9 |];
      Log.publish log 5;
      check_bool "published on lap 1" true (Log.is_full log 5);
      (* and from lap 2's perspective that slot is empty again *)
      check_bool "lap-2 view is empty" false (Log.is_full log 9))

let test_entry_addresses_wrap () =
  with_log ~size:4 (fun _mem log ->
      check "idx 0 and 4 share a slot" (Log.entry_addr log 0) (Log.entry_addr log 4);
      check_bool "idx 1 differs from idx 0" true
        (Log.entry_addr log 1 <> Log.entry_addr log 0))

let test_durable_entry_survives_crash () =
  with_log ~durable:true (fun mem log ->
      Log.write_payload log 2 ~op:5 ~args:[| 1; 2; 3 |];
      Log.persist_entry log 2;
      Log.fence log;
      Log.publish log 2;
      Log.persist_entry log 2;
      Log.fence log;
      Memory.crash mem;
      check_bool "entry recovered" true (Log.is_full log 2);
      let op, args = Log.read_payload log 2 in
      check "op recovered" 5 op;
      Alcotest.(check (array int)) "args recovered" [| 1; 2; 3 |] args)

let test_unfenced_entry_lost () =
  with_log ~durable:true (fun mem log ->
      Log.write_payload log 2 ~op:5 ~args:[| 1 |];
      Log.persist_entry log 2;
      Log.publish log 2;
      Log.persist_entry log 2;
      (* no fence *)
      Memory.crash mem;
      check_bool "hole after crash" false (Log.is_full log 2))

let test_volatile_log_gone_after_crash () =
  with_log ~durable:false (fun mem log ->
      Log.write_payload log 0 ~op:1 ~args:[||];
      Log.publish log 0;
      Memory.crash mem;
      check_bool "dram log lost" false (Log.is_full log 0))

let test_large_log_spans_arenas () =
  Sim.run_one (fun () ->
      let mem = Memory.make ~bg_period:0 () in
      let size = (2 * Memory.arena_words / Log.entry_words) + 100 in
      let log = Log.create mem ~size ~durable:false in
      (* write entries at both ends and in the middle *)
      List.iter
        (fun i ->
          Log.write_payload log i ~op:i ~args:[| i |];
          Log.publish log i)
        [ 0; size / 2; size - 1 ];
      List.iter
        (fun i ->
          let op, args = Log.read_payload log i in
          check "op round-trip" i op;
          check "arg round-trip" i args.(0))
        [ 0; size / 2; size - 1 ])

let test_max_args_enforced () =
  with_log (fun _mem log ->
      Alcotest.check_raises "too many args"
        (Invalid_argument "Log: too many args") (fun () ->
          Log.write_payload log 0 ~op:0 ~args:[| 1; 2; 3; 4 |]))

let () =
  Alcotest.run "log"
    [
      ( "circular-log",
        [
          Alcotest.test_case "empty initially" `Quick test_empty_initially;
          Alcotest.test_case "publish and read" `Quick test_publish_and_read;
          Alcotest.test_case "parity flips each lap" `Quick test_parity_flips_each_lap;
          Alcotest.test_case "stale entry reads empty" `Quick
            test_stale_entry_reads_empty_after_wrap;
          Alcotest.test_case "entry addresses wrap" `Quick test_entry_addresses_wrap;
          Alcotest.test_case "max args enforced" `Quick test_max_args_enforced;
          Alcotest.test_case "spans arenas" `Quick test_large_log_spans_arenas;
        ] );
      ( "durability",
        [
          Alcotest.test_case "durable entry survives" `Quick
            test_durable_entry_survives_crash;
          Alcotest.test_case "unfenced entry lost" `Quick test_unfenced_entry_lost;
          Alcotest.test_case "volatile log gone" `Quick
            test_volatile_log_gone_after_crash;
        ] );
    ]
