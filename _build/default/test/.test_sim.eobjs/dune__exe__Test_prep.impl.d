test/test_prep.ml: Alcotest Alloc Array Atomic Config Context Cx_puc Gl_uc Hashtbl Int64 List Log Memory Nvm Option Prep Prep_uc Printf Roots Seqds Sim Soft_hash Trace
