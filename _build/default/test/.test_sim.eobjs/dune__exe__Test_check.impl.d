test/test_check.ml: Alcotest Check Config Cx_puc Gl_uc List Memory Nvm Prep Prep_uc Printf Roots Seqds Sim Soft_hash
