test/test_harness.ml: Alcotest Array Context Experiment Harness Int64 List Memory Nvm Option Prep Printf Roots Seqds Sim Workload
