test/test_locks.ml: Alcotest Array Locks Memory Nvm Option Prep Printf Sim
