test/test_seqds.ml: Alcotest Alloc Context Hashmap List Memory Nvm Pqueue QCheck QCheck_alcotest Queue_ds Rbtree Seqds Sim Skiplist Stack_ds
