test/test_nvm.ml: Alcotest Alloc Context List Memory Nvm QCheck QCheck_alcotest Roots Sim
