test/test_seqds.mli:
