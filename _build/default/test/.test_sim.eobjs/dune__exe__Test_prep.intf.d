test/test_prep.mli:
