test/test_log.ml: Alcotest Array List Log Memory Nvm Prep Sim
