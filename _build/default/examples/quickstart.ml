(* Quickstart: lift a sequential hashmap into a persistent concurrent map
   with PREP-Buffered, run concurrent operations, power-fail, recover.

     dune exec examples/quickstart.exe *)

open Nvm
module Uc = Prep.Prep_uc.Make (Seqds.Hashmap)
module H = Seqds.Hashmap

let () =
  (* A simulated 2-socket machine and its memory (DRAM + NVM). *)
  let topology = Sim.Topology.{ sockets = 2; cores_per_socket = 4 } in
  let sim = Sim.create ~seed:2024L topology in
  let mem = Memory.make ~sockets:2 () in
  let uc_ref = ref None in

  ignore
    (Sim.spawn sim ~socket:0 (fun () ->
         let roots = Roots.make mem in
         (* PREP-Buffered: checkpoint every epsilon = 256 update ops. *)
         let cfg =
           Prep.Config.make ~mode:Prep.Config.Buffered ~log_size:4096
             ~epsilon:256 ~workers:4 ()
         in
         let uc = Uc.create mem roots cfg in
         uc_ref := Some uc;
         Uc.start_persistence uc;
         (* Four workers, one per core of socket 0, each inserting its own
            key range through ExecuteConcurrent. *)
         let finished = ref 0 in
         for w = 0 to 3 do
           Sim.spawn_here ~socket:0 ~core:w (fun () ->
               Uc.register_worker uc;
               for i = 0 to 499 do
                 ignore
                   (Uc.execute uc ~op:H.op_insert ~args:[| (w * 1000) + i; i |])
               done;
               incr finished)
         done;
         while !finished < 4 do
           Sim.tick 100_000
         done;
         Uc.register_worker uc;
         Printf.printf "before crash: size = %d\n"
           (Uc.execute uc ~op:H.op_size ~args:[||]);
         Uc.stop uc));
  (match Sim.run sim () with
   | `Done -> ()
   | `Cut _ -> failwith "unexpected cut");

  (* Power failure: caches and DRAM are gone, NVM media survives. *)
  Memory.crash mem;
  Context.reset ();
  Printf.printf "power failure!\n";

  (* Recovery in a fresh simulation (fresh threads, same NVM). *)
  let sim2 = Sim.create ~seed:2025L topology in
  ignore
    (Sim.spawn sim2 ~socket:0 (fun () ->
         let uc, report = Uc.recover (Option.get !uc_ref) in
         Printf.printf "recovered %d ops; lost %d completed ops (bound %d)\n"
           (List.length report.Prep.Prep_uc.applied)
           report.Prep.Prep_uc.lost_completed
           (256 + 4 - 1);
         Uc.register_worker uc;
         Uc.start_persistence uc;
         Printf.printf "after recovery: size = %d\n"
           (Uc.execute uc ~op:H.op_size ~args:[||]);
         (* the recovered object is fully usable *)
         ignore (Uc.execute uc ~op:H.op_insert ~args:[| 999_999; 1 |]);
         Printf.printf "insert after recovery: get -> %d\n"
           (Uc.execute uc ~op:H.op_get ~args:[| 999_999 |]);
         Uc.stop uc));
  (match Sim.run sim2 () with
   | `Done -> print_endline "quickstart done"
   | `Cut _ -> failwith "unexpected cut")
