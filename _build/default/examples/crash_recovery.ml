(* Repeated power failures: the buffered-vs-durable trade-off, live.

   PREP-Buffered may lose up to epsilon + beta - 1 completed operations
   per crash (paper §5.1); PREP-Durable loses none (§5.2). This example
   runs the same update-heavy counter workload through both modes across
   a series of crashes and prints the per-crash loss accounting next to
   the paper's bound.

     dune exec examples/crash_recovery.exe *)

open Nvm
module Uc = Prep.Prep_uc.Make (Seqds.Hashmap)
module H = Seqds.Hashmap

let topology = Sim.Topology.{ sockets = 2; cores_per_socket = 4 }
let beta = topology.Sim.Topology.cores_per_socket
let epsilon = 128
let crashes = 3

let run_mode mode =
  Printf.printf "\n%s (epsilon = %d, beta = %d):\n"
    (Prep.Config.mode_name mode) epsilon beta;
  let mem = Memory.make ~sockets:2 ~bg_period:5000 () in
  let seed = ref 100L in
  let next_seed () =
    seed := Int64.add !seed 1L;
    !seed
  in
  (* phase 0 creates the UC; afterwards we loop: run, crash, recover *)
  let uc = ref None in
  let sim0 = Sim.create ~seed:(next_seed ()) topology in
  ignore
    (Sim.spawn sim0 ~socket:0 (fun () ->
         let roots = Roots.make mem in
         let cfg =
           Prep.Config.make ~mode ~log_size:2048 ~epsilon ~workers:6 ()
         in
         uc := Some (Uc.create mem roots cfg)));
  (match Sim.run sim0 () with `Done -> () | `Cut _ -> failwith "cut");
  let total_lost = ref 0 in
  for crash = 1 to crashes do
    (* run an update-heavy phase, then pull the plug mid-flight *)
    let sim = Sim.create ~seed:(next_seed ()) topology in
    ignore
      (Sim.spawn sim ~socket:0 (fun () ->
           let u = Option.get !uc in
           Uc.start_persistence u;
           for w = 0 to 5 do
             let socket, core = Sim.Topology.place topology w in
             Sim.spawn_here ~socket ~core (fun () ->
                 Uc.register_worker u;
                 let rng = Sim.fiber_rng () in
                 for i = 0 to max_int - 1 do
                   let k = Sim.Rng.int rng 64 in
                   ignore (Uc.execute u ~op:H.op_insert ~args:[| k; i |])
                 done)
           done));
    (match Sim.run ~until:1_500_000 sim () with
     | `Cut _ -> ()
     | `Done -> failwith "workload ended early");
    Memory.crash mem;
    Context.reset ();
    let sim2 = Sim.create ~seed:(next_seed ()) topology in
    ignore
      (Sim.spawn sim2 ~socket:0 (fun () ->
           let u, report = Uc.recover (Option.get !uc) in
           let completed =
             List.length (Prep.Trace.completed_indexes (Uc.trace (Option.get !uc)))
           in
           total_lost := !total_lost + report.Prep.Prep_uc.lost_completed;
           Printf.printf
             "  crash %d: %5d completed ops, lost %3d (bound %d), prefix: %b\n"
             crash completed report.Prep.Prep_uc.lost_completed
             (epsilon + beta - 1) report.Prep.Prep_uc.contiguous_prefix;
           uc := Some u));
    (match Sim.run sim2 () with `Done -> () | `Cut _ -> failwith "cut")
  done;
  Printf.printf "  total lost over %d crashes: %d (bound %d)\n" crashes
    !total_lost
    (crashes * (epsilon + beta - 1))

let () =
  print_endline "Crash-loss accounting, PREP-Buffered vs PREP-Durable";
  run_mode Prep.Config.Buffered;
  run_mode Prep.Config.Durable;
  print_endline "\ncrash_recovery done"
