examples/quickstart.mli:
