examples/crash_recovery.ml: Context Int64 List Memory Nvm Option Prep Printf Roots Seqds Sim
