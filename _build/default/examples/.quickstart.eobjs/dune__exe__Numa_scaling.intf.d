examples/numa_scaling.mli:
