examples/kv_store.ml: Context Hashtbl List Memory Nvm Option Prep Printf Roots Seqds Sim
