examples/numa_scaling.ml: Experiment Figures Harness List Prep Printf Seqds Workload
