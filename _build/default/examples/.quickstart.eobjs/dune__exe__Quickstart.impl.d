examples/quickstart.ml: Context List Memory Nvm Option Prep Printf Roots Seqds Sim
