(* A persistent key-value store built on PREP-Durable.

   The scenario the paper's introduction motivates: you have a plain
   sequential data structure (here the red-black tree) and want a
   crash-recoverable concurrent service without writing a single flush or
   fence yourself. PREP-Durable guarantees that every acknowledged write
   survives a power failure.

   The example runs a mixed PUT/GET/DELETE workload across both sockets,
   injects a crash, recovers, and audits that every acknowledged PUT or
   DELETE before the crash is reflected in the recovered store.

     dune exec examples/kv_store.exe *)

open Nvm
module Uc = Prep.Prep_uc.Make (Seqds.Rbtree)
module R = Seqds.Rbtree

type ack = { key : int; value : int; deleted : bool }

let () =
  let topology = Sim.Topology.{ sockets = 2; cores_per_socket = 4 } in
  let sim = Sim.create ~seed:7L topology in
  let mem = Memory.make ~sockets:2 ~bg_period:5000 () in
  let uc_ref = ref None in
  (* acknowledged writes, recorded on the OCaml side as the "client" *)
  let acked : (int, ack) Hashtbl.t = Hashtbl.create 1024 in
  (* writes in flight when the crash hits: durable linearizability allows
     them to take effect or not, so the audit must accept either outcome *)
  let pending : (int, ack) Hashtbl.t = Hashtbl.create 64 in

  ignore
    (Sim.spawn sim ~socket:0 (fun () ->
         let roots = Roots.make mem in
         let cfg =
           Prep.Config.make ~mode:Prep.Config.Durable ~log_size:4096
             ~epsilon:512 ~workers:6 ()
         in
         let uc = Uc.create mem roots cfg in
         uc_ref := Some uc;
         Uc.start_persistence uc;
         for w = 0 to 5 do
           let socket, core = Sim.Topology.place topology w in
           Sim.spawn_here ~socket ~core (fun () ->
               Uc.register_worker uc;
               let rng = Sim.fiber_rng () in
               (* run "forever": the crash will cut us off *)
               for i = 0 to 1_000_000 do
                 let key = (w * 1_000_000) + Sim.Rng.int rng 500 in
                 match Sim.Rng.int rng 10 with
                 | 0 | 1 | 2 | 3 ->
                   let value = i in
                   let a = { key; value; deleted = false } in
                   Hashtbl.replace pending key a;
                   ignore (Uc.execute uc ~op:R.op_insert ~args:[| key; value |]);
                   (* the PUT is acknowledged: durable mode promises it *)
                   Hashtbl.remove pending key;
                   Hashtbl.replace acked key a
                 | 4 ->
                   let a = { key; value = 0; deleted = true } in
                   Hashtbl.replace pending key a;
                   ignore (Uc.execute uc ~op:R.op_remove ~args:[| key |]);
                   Hashtbl.remove pending key;
                   Hashtbl.replace acked key a
                 | _ -> ignore (Uc.execute uc ~op:R.op_get ~args:[| key |])
               done)
         done))
  |> ignore;
  (* run for 4 simulated milliseconds, then pull the plug *)
  (match Sim.run ~until:4_000_000 sim () with
   | `Cut _ -> Printf.printf "power failure with %d acknowledged writes\n"
                 (Hashtbl.length acked)
   | `Done -> failwith "workload ended before the crash");
  Memory.crash mem;
  Context.reset ();

  let sim2 = Sim.create ~seed:8L topology in
  ignore
    (Sim.spawn sim2 ~socket:0 (fun () ->
         let uc, report = Uc.recover (Option.get !uc_ref) in
         Printf.printf "recovery applied %d logged updates (%d lost: must be 0)\n"
           (List.length report.Prep.Prep_uc.applied)
           report.Prep.Prep_uc.lost_completed;
         Uc.register_worker uc;
         Uc.start_persistence uc;
         (* audit every acknowledged write against the recovered store:
            the observed value must match either the last acknowledged
            write or an operation that was in flight at the crash *)
         let violations = ref 0 in
         Hashtbl.iter
           (fun key ack ->
             let got = Uc.execute uc ~op:R.op_get ~args:[| key |] in
             let allowed = [ (if ack.deleted then -1 else ack.value) ] in
             let allowed =
               match Hashtbl.find_opt pending key with
               | Some p -> (if p.deleted then -1 else p.value) :: allowed
               | None -> allowed
             in
             if not (List.mem got allowed) then incr violations)
           acked;
         Printf.printf "audit: %d durability violations across %d acked writes\n"
           !violations (Hashtbl.length acked);
         if !violations > 0 then exit 1;
         Uc.stop uc));
  (match Sim.run sim2 () with
   | `Done -> print_endline "kv_store done: all acknowledged writes survived"
   | `Cut _ -> failwith "unexpected cut")
